// Command confluence-sim regenerates the paper's evaluation: every table
// and figure, printed as text tables in the paper's row/series layout.
//
// Usage:
//
//	confluence-sim [-scale small|default|paper] [-workers N] [-intra-workers N] [-intra-epoch K] [-run fig1,table2,fig6,...] [-store DIR] [-sample] [-v]
//	confluence-sim -trace CAPTURE_DIR [-trace-workload NAME] [-scale ...]
//	confluence-sim -mix OLTP-DB2,Web-Frontend [-scale ...]
//	confluence-sim -job job.json [-v]
//	confluence-sim -fleet-coordinator DIR -job job.json -store DIR [-fleet-lease-ttl D] [-v]
//	confluence-sim -fleet-worker DIR [-v]
//
// The default runs everything at the "default" scale (8 cores, 3M
// instructions per core), fanning independent simulation cells out across
// all CPUs. REPRO_SCALE overrides the default scale; REPRO_WORKERS (or
// -workers) bounds the worker pool. -intra-workers additionally parallelizes
// inside each simulation with bound-weave epochs (the -workers budget is
// split between the two levels); at the default epoch depth (-intra-epoch 1)
// results are bit-identical to serial, while K>1 is a documented
// approximation with one-epoch-stale cross-core timing feedback. Results
// are bit-identical for any worker count at fixed K. Ctrl-C cancels cleanly
// between cells.
//
// With -trace, the binary replays a capture directory (written by
// `tracegen -cores`) through the timing model instead of the synthetic
// suite, running the paper's headline design points on it. Naming the
// capture's source workload with -trace-workload restores its program
// image and timing calibration, making the replay bit-identical to the
// live run that produced the capture.
//
// With -mix, the binary consolidates the named workloads onto one CMP
// (core i runs workload i mod N) and runs the consolidation study on that
// single mix: the history-sharing design points, each with the
// shared-vs-private SHIFT history ablation, reported as harmonic-mean IPC
// and weighted speedup against each workload running alone. The full 2-,
// 4-, and 5-workload sweep runs as the `mixstudy` experiment.
//
// With -job, the binary executes a serialized JobSpec (the same JSON
// schema the confluence-serve daemon accepts) through the daemon's
// executor, so a spec can be debugged locally before being submitted to a
// server — the results are identical by construction.
//
// With -sample, simulations run in SMARTS-style sampled mode: warm-up
// advances through functional fast-forward (only history-relevant state —
// predictors, BTBs, caches, SHIFT history — evolves) and the measure
// region is covered by periodic detailed windows whose per-window
// statistics carry 95% confidence intervals, cutting detailed-simulated
// instructions ~10-20x at sub-percent IPC/MPKI error. Combined with
// -store, the warm-up state is checkpointed and reused across design
// points sharing a workload. Exact mode (no flag) remains the golden
// anchor.
//
// With -store, completed simulation cells persist to a content-addressed
// on-disk result store, and cells whose inputs are already stored are
// served from it without simulating: a run killed mid-grid resumes from
// its completed cells on the next invocation, with byte-identical output.
// The flag composes with every mode; a summary of store traffic prints to
// stderr on exit.
//
// With -fleet-coordinator, the binary publishes the -job spec's grid as a
// lease-based fleet rooted at DIR and participates in it: any number of
// `confluence-sim -fleet-worker DIR` processes (started before or after,
// on the same filesystem) pull unclaimed cells work-stealing style, and
// SIGKILLed workers' cells are reclaimed when their leases expire. With
// zero workers attached the coordinator executes the whole grid inline.
// Either way stdout is byte-identical to the plain `-job` run: the final
// result is always served from the -store in canonical order. Cells that
// keep failing are quarantined after their retry budget; the coordinator
// then exits non-zero listing them (the healthy cells' results remain in
// the store). Fleet progress goes to stderr only. The
// CONFLUENCE_FLEET_CHAOS environment variable injects faults for the
// robustness harness (see internal/fleet).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"confluence"
	"confluence/internal/cliutil"
	"confluence/internal/experiments"
	"confluence/internal/fleet"
	"confluence/internal/serve"
	"confluence/internal/store"
)

func main() {
	scaleFlag := flag.String("scale", "", "simulation scale: small, default, or paper")
	runFlag := flag.String("run", "all", "comma-separated experiments: fig1,table2,fig2,fig6,fig7,fig8,fig9,fig10,ablations,mixstudy,all")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = REPRO_WORKERS or GOMAXPROCS)")
	intraWorkers := flag.Int("intra-workers", 0, "bound-weave workers inside each simulation (0/1 = serial; the -workers budget is split between levels)")
	intraEpoch := flag.Int("intra-epoch", 0, "bound-weave epoch depth K in blocks per core (0/1 = exact mode; K>1 is a documented approximation)")
	verbose := flag.Bool("v", false, "print per-run progress")
	traceDir := flag.String("trace", "", "replay a capture directory through the timing model instead of the synthetic suite")
	traceWorkload := flag.String("trace-workload", "", "workload the capture was taken from (restores program image + calibration)")
	mixFlag := flag.String("mix", "", "comma-separated workload names: run the consolidation study on this mix (core i runs workload i mod N)")
	jobFlag := flag.String("job", "", "execute a JobSpec JSON file (the confluence-serve schema) and print its result rows")
	storeDir := flag.String("store", "", "durable result store directory: completed cells persist and repeat runs resume from them")
	fleetCoord := flag.String("fleet-coordinator", "", "publish the -job grid as a fleet rooted at this directory and participate until it resolves (requires -job and -store)")
	fleetWorker := flag.String("fleet-worker", "", "attach to the fleet rooted at this directory and work cells until the grid resolves")
	fleetTTL := flag.Duration("fleet-lease-ttl", 0, "fleet cell lease TTL (coordinator default 10s; workers inherit the manifest's)")
	sample := flag.Bool("sample", false, "SMARTS-style sampled simulation: fast-forward warm-up + periodic detailed measurement windows with 95% CIs (~10x fewer detailed instructions; exact mode stays the golden anchor)")
	flag.Parse()
	defer reportStore(*storeDir)

	sc := experiments.ScaleFromEnv()
	if *scaleFlag != "" {
		var ok bool
		if sc, ok = experiments.ScaleByName(*scaleFlag); !ok {
			fmt.Fprintf(os.Stderr, "confluence-sim: unknown scale %q\n", *scaleFlag)
			os.Exit(2)
		}
	}

	ctx, stop := cliutil.InterruptContext()
	defer stop()

	if *fleetWorker != "" {
		if err := runFleetWorker(ctx, *fleetWorker, *fleetTTL, *verbose); err != nil {
			fatal(err)
		}
		return
	}
	if *fleetCoord != "" {
		if *jobFlag == "" || *storeDir == "" {
			fatal(fmt.Errorf("-fleet-coordinator requires -job (the grid) and -store (where results land)"))
		}
		if err := runFleetCoordinator(ctx, *fleetCoord, *jobFlag, *storeDir, *fleetTTL, *verbose); err != nil {
			fatal(err)
		}
		return
	}
	if *jobFlag != "" {
		if err := runJobFile(ctx, *jobFlag, *storeDir, *verbose); err != nil {
			fatal(err)
		}
		return
	}
	if *traceDir != "" {
		if err := replayTrace(ctx, sc, *traceDir, *traceWorkload, *storeDir, *workers, *intraWorkers, *intraEpoch, *sample); err != nil {
			fatal(err)
		}
		return
	}
	if *mixFlag != "" {
		if err := runMix(ctx, sc, *mixFlag, *storeDir, *workers, *intraWorkers, *intraEpoch, *sample, *verbose); err != nil {
			fatal(err)
		}
		return
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*runFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	pick := func(name string) bool { return all || want[name] }

	//confluence:allow wallclock human-facing elapsed-time banner; never reaches simulated stats
	start := time.Now()
	fmt.Printf("confluence-sim: scale=%s cores=%d warmup=%d measure=%d (per core)\n\n",
		sc.Name, sc.Cores, sc.Warmup, sc.Measure)

	r, err := experiments.NewRunner(sc, *workers)
	if err != nil {
		fatal(err)
	}
	r.IntraWorkers = *intraWorkers
	r.EpochBlocks = *intraEpoch
	if *storeDir != "" {
		r.Store = store.Open(*storeDir)
	}
	if *sample {
		sp := confluence.AutoSampling(sc.Measure)
		r.Sampling = sp
		fmt.Printf("sampled mode: %d windows of %d instr per %d instr (+%d detailed warm-up each), warm-up fast-forwarded\n\n",
			sp.Windows, sp.WindowInstr, sp.PeriodInstr, sp.WindowWarmupInstr)
	}
	if *verbose {
		r.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}

	if pick("table2") {
		rows, err := r.Table2(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Table2Table(rows))
	}
	if pick("fig1") {
		rows, err := r.Figure1(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Figure1Table(rows))
	}
	if pick("fig2") {
		points, err := r.Figure2(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.PerfAreaTable("Figure 2: conventional instruction-supply mechanisms", points))
	}
	if pick("fig6") {
		points, err := r.Figure6(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.PerfAreaTable("Figure 6: Confluence vs conventional mechanisms", points))
	}
	if pick("fig7") {
		rows, err := r.Figure7(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Figure7Table(rows))
	}
	if pick("fig8") {
		rows, err := r.Figure8(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Figure8Table(rows))
	}
	if pick("fig9") {
		rows, err := r.Figure9(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Figure9Table(rows))
	}
	if pick("fig10") {
		rows, err := r.Figure10(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Figure10Table(rows))
	}
	if pick("mixstudy") {
		rows, err := r.MixStudy(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.MixStudyTable(rows))
	}
	if pick("ablations") {
		rows, err := r.LookaheadSweep(ctx, []int{4, 8, 20, 32})
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.AblationTable("Ablation: SHIFT lookahead depth (Confluence)", rows))
		rows, err = r.SharedVsPrivateHistory(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.AblationTable("Ablation: shared vs private SHIFT history (Confluence)", rows))
	}

	//confluence:allow wallclock human-facing elapsed-time banner; never reaches simulated stats
	fmt.Printf("done in %.1fs\n", time.Since(start).Seconds())
}

// replayTrace runs the paper's headline design points over a capture
// directory, one replayed simulation per design.
func replayTrace(ctx context.Context, sc experiments.Scale, dir, workloadName, storeDir string, workers, intraWorkers, intraEpoch int, sample bool) error {
	// Split the goroutine budget between replay-level and in-run
	// parallelism, exactly as the experiment runners do.
	workers = experiments.SplitWorkers(workers, intraWorkers)
	var w *confluence.Workload
	var err error
	if workloadName != "" {
		w, err = confluence.BuildWorkload(workloadName)
	} else {
		w, err = confluence.WorkloadFromTrace(dir)
	}
	if err != nil {
		return err
	}

	designs := []confluence.DesignPoint{
		confluence.Base1K, confluence.FDP1K, confluence.TwoLevelFDP,
		confluence.TwoLevelSHIFT, confluence.Confluence, confluence.Ideal,
	}
	var sp confluence.Sampling
	if sample {
		sp = confluence.AutoSampling(sc.Measure)
	}
	cfgs := make([]confluence.Config, len(designs))
	for i, dp := range designs {
		cfgs[i] = confluence.Config{
			Workload: w, Design: dp, TraceDir: dir, Cores: sc.Cores,
			WarmupInstr: sc.Warmup, MeasureInstr: sc.Measure,
			Parallelism:      workers,
			IntraParallelism: intraWorkers,
			EpochBlocks:      intraEpoch,
			StoreDir:         storeDir,
			Sampling:         sp,
		}
	}
	res, err := confluence.RunMany(ctx, workers, cfgs)
	if err != nil {
		return err
	}

	fmt.Printf("replaying %s (%s calibration), %d cores, warmup=%d measure=%d per core\n\n",
		dir, w.Prof.Name, sc.Cores, sc.Warmup, sc.Measure)
	header := fmt.Sprintf("%-18s %7s %8s %8s %9s", "design", "IPC", "btbMPKI", "l1iMPKI", "speedup")
	if sample {
		header += "   IPC ±95%CI"
	}
	fmt.Println(header)
	base := res[0].Stats.IPC()
	for i, dp := range designs {
		st := res[i].Stats
		line := fmt.Sprintf("%-18s %7.3f %8.1f %8.1f %8.2fx",
			dp, st.IPC(), st.BTBMPKI(), st.L1IMPKI(), st.IPC()/base)
		if rep := res[i].Sampled; rep != nil {
			line += "   " + rep.IPC.String()
		}
		fmt.Println(line)
	}
	return nil
}

// runMix runs the consolidation study on one explicit workload mix.
func runMix(ctx context.Context, sc experiments.Scale, spec, storeDir string, workers, intraWorkers, intraEpoch int, sample, verbose bool) error {
	var mix []*confluence.Workload
	for _, name := range strings.Split(spec, ",") {
		w, err := confluence.BuildWorkload(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		mix = append(mix, w)
	}
	r := experiments.NewRunnerFor(sc, nil)
	r.Workers = workers
	r.IntraWorkers = intraWorkers
	r.EpochBlocks = intraEpoch
	if storeDir != "" {
		r.Store = store.Open(storeDir)
	}
	if sample {
		r.Sampling = confluence.AutoSampling(sc.Measure)
	}
	if verbose {
		r.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}
	fmt.Printf("consolidating %s onto %d cores (core i runs workload i mod %d), warmup=%d measure=%d per core\n\n",
		experiments.MixName(mix), sc.Cores, len(mix), sc.Warmup, sc.Measure)
	rows, err := r.MixStudyFor(ctx, [][]*confluence.Workload{mix}, experiments.MixStudyDesigns())
	if err != nil {
		return err
	}
	fmt.Println(experiments.MixStudyTable(rows))
	return nil
}

// runJobFile executes a JobSpec file through the serving executor — the
// exact path a confluence-serve worker takes — and prints the result.
func runJobFile(ctx context.Context, path, storeDir string, verbose bool) error {
	spec, err := loadJobSpec(path)
	if err != nil {
		return err
	}
	res, err := serve.ExecuteSpecStore(ctx, spec, storeDir, jobEmitter(verbose))
	if err != nil {
		return err
	}
	printJobResult(res)
	return nil
}

// loadJobSpec reads and parses a JobSpec file.
func loadJobSpec(path string) (*confluence.JobSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return confluence.ParseJobSpec(data)
}

// jobEmitter returns the verbose per-cell progress printer (nil when
// quiet). Progress goes to stderr; stdout carries only the result, which
// is what keeps fleet and serial runs byte-comparable.
func jobEmitter(verbose bool) func(experiments.ProgressEvent) {
	if !verbose {
		return nil
	}
	return func(e experiments.ProgressEvent) { fmt.Fprintln(os.Stderr, "  "+e.String()) }
}

// printJobResult renders a job result to stdout in the -job layout.
func printJobResult(res *serve.Result) {
	if res.Kind == confluence.KindMixStudy {
		fmt.Println(experiments.MixStudyTable(res.MixRows))
		return
	}
	fmt.Printf("%-20s %-18s %7s %8s %8s %9s\n", "mix", "design", "IPC", "btbMPKI", "l1iMPKI", "area mm2")
	for _, c := range res.Cells {
		fmt.Printf("%-20s %-18s %7.3f %8.1f %8.1f %9.3f\n",
			c.Mix, c.Design, c.Stats.IPC(), c.Stats.BTBMPKI(), c.Stats.L1IMPKI(), c.OverheadMM2)
	}
}

// fleetEventLogger streams fleet protocol events to stderr when verbose.
func fleetEventLogger(verbose bool) func(fleet.Event) {
	if !verbose {
		return nil
	}
	return func(e fleet.Event) {
		line := fmt.Sprintf("fleet %-6s %s worker=%s", e.Type, e.Cell, e.Worker)
		if e.Attempt > 0 {
			line += fmt.Sprintf(" attempt=%d", e.Attempt)
		}
		if e.Err != "" {
			line += " err=" + e.Err
		}
		fmt.Fprintln(os.Stderr, "  "+line)
	}
}

// runFleetCoordinator publishes the job's grid into dir, participates
// until it resolves, and prints the assembled result — byte-identical to
// the plain -job run. Quarantined cells surface as an error (non-zero
// exit) after the healthy cells have completed and persisted.
func runFleetCoordinator(ctx context.Context, dir, jobPath, storeDir string, ttl time.Duration, verbose bool) error {
	spec, err := loadJobSpec(jobPath)
	if err != nil {
		return err
	}
	chaos, err := fleet.ChaosFromEnv()
	if err != nil {
		return err
	}
	o := fleet.Options{Dir: dir, LeaseTTL: ttl, Chaos: chaos, OnEvent: fleetEventLogger(verbose)}
	res, rep, err := serve.ExecuteSpecFleet(ctx, spec, storeDir, o, jobEmitter(verbose))
	if rep != nil {
		fmt.Fprintf(os.Stderr, "fleet %s: %d completed, %d hits, %d steals, %d quarantined\n",
			dir, rep.Completed, rep.Hits, rep.Steals, len(rep.Poisoned))
	}
	if err != nil {
		return err
	}
	printJobResult(res)
	return nil
}

// runFleetWorker attaches to the fleet at dir and works cells until the
// grid resolves. Workers exit zero even when the grid ends with
// quarantined cells — a poison cell is the grid's defect, not this
// worker's — and report what they saw on stderr.
func runFleetWorker(ctx context.Context, dir string, ttl time.Duration, verbose bool) error {
	chaos, err := fleet.ChaosFromEnv()
	if err != nil {
		return err
	}
	o := fleet.Options{
		Dir: dir, Run: serve.CellRunner(), LeaseTTL: ttl,
		Chaos: chaos, OnEvent: fleetEventLogger(verbose),
	}
	rep, err := fleet.Worker(ctx, o)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fleet worker done: %d completed, %d hits, %d steals, %d quarantined\n",
		rep.Completed, rep.Hits, rep.Steals, len(rep.Poisoned))
	for _, p := range rep.Poisoned {
		fmt.Fprintf(os.Stderr, "  quarantined %s after %d attempts: %s\n", p.CellID, p.Attempts, p.LastErr)
	}
	return nil
}

// reportStore prints the run's store traffic to stderr. The store
// registry hands back the same handle every path used, so the counters
// cover the whole process.
func reportStore(dir string) {
	if dir == "" {
		return
	}
	s := store.Open(dir)
	hits, misses, writes := s.Counters()
	fmt.Fprintf(os.Stderr, "store %s: %d hits, %d misses, %d writes (%d entries)\n",
		s.Dir(), hits, misses, writes, s.Len())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confluence-sim:", err)
	os.Exit(1)
}
