// Command confluence-sim regenerates the paper's evaluation: every table
// and figure, printed as text tables in the paper's row/series layout.
//
// Usage:
//
//	confluence-sim [-scale small|default|paper] [-workers N] [-run fig1,table2,fig6,...] [-v]
//
// The default runs everything at the "default" scale (8 cores, 3M
// instructions per core), fanning independent simulation cells out across
// all CPUs. REPRO_SCALE overrides the default scale; REPRO_WORKERS (or
// -workers) bounds the worker pool. Results are bit-identical for any
// worker count. Ctrl-C cancels cleanly between cells.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"confluence/internal/cliutil"
	"confluence/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "", "simulation scale: small, default, or paper")
	runFlag := flag.String("run", "all", "comma-separated experiments: fig1,table2,fig2,fig6,fig7,fig8,fig9,fig10,ablations,all")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = REPRO_WORKERS or GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print per-run progress")
	flag.Parse()

	sc := experiments.ScaleFromEnv()
	if *scaleFlag != "" {
		var ok bool
		if sc, ok = experiments.ScaleByName(*scaleFlag); !ok {
			fmt.Fprintf(os.Stderr, "confluence-sim: unknown scale %q\n", *scaleFlag)
			os.Exit(2)
		}
	}

	ctx, stop := cliutil.InterruptContext()
	defer stop()

	want := map[string]bool{}
	for _, name := range strings.Split(*runFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	pick := func(name string) bool { return all || want[name] }

	start := time.Now()
	fmt.Printf("confluence-sim: scale=%s cores=%d warmup=%d measure=%d (per core)\n\n",
		sc.Name, sc.Cores, sc.Warmup, sc.Measure)

	r, err := experiments.NewRunner(sc, *workers)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		r.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}

	if pick("table2") {
		rows, err := r.Table2(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Table2Table(rows))
	}
	if pick("fig1") {
		rows, err := r.Figure1(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Figure1Table(rows))
	}
	if pick("fig2") {
		points, err := r.Figure2(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.PerfAreaTable("Figure 2: conventional instruction-supply mechanisms", points))
	}
	if pick("fig6") {
		points, err := r.Figure6(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.PerfAreaTable("Figure 6: Confluence vs conventional mechanisms", points))
	}
	if pick("fig7") {
		rows, err := r.Figure7(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Figure7Table(rows))
	}
	if pick("fig8") {
		rows, err := r.Figure8(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Figure8Table(rows))
	}
	if pick("fig9") {
		rows, err := r.Figure9(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Figure9Table(rows))
	}
	if pick("fig10") {
		rows, err := r.Figure10(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Figure10Table(rows))
	}
	if pick("ablations") {
		rows, err := r.LookaheadSweep(ctx, []int{4, 8, 20, 32})
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.AblationTable("Ablation: SHIFT lookahead depth (Confluence)", rows))
		rows, err = r.SharedVsPrivateHistory(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.AblationTable("Ablation: shared vs private SHIFT history (Confluence)", rows))
	}

	fmt.Printf("done in %.1fs\n", time.Since(start).Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confluence-sim:", err)
	os.Exit(1)
}
