// Command btbsweep is a standalone Figure 1 tool: it sweeps conventional
// BTB capacity and prints BTB MPKI per workload. Sweep points fan out
// across the worker pool.
//
// Usage:
//
//	btbsweep [-scale small|default|paper] [-workers N] [-workload NAME] [-store DIR] [-sample]
package main

import (
	"flag"
	"fmt"
	"os"

	"confluence/internal/cliutil"
	"confluence/internal/core"
	"confluence/internal/experiments"
	"confluence/internal/store"
	"confluence/internal/synth"
)

func main() {
	scaleFlag := flag.String("scale", "", "simulation scale: small, default, or paper")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = REPRO_WORKERS or GOMAXPROCS)")
	workload := flag.String("workload", "", "restrict to one workload profile")
	storeDir := flag.String("store", "", "durable result store directory: repeat sweeps resume from completed cells")
	sample := flag.Bool("sample", false, "SMARTS-style sampled simulation: fast-forward warm-up + periodic detailed windows (~10x fewer detailed instructions)")
	flag.Parse()

	sc := experiments.ScaleFromEnv()
	if *scaleFlag != "" {
		var ok bool
		if sc, ok = experiments.ScaleByName(*scaleFlag); !ok {
			fmt.Fprintf(os.Stderr, "btbsweep: unknown scale %q\n", *scaleFlag)
			os.Exit(2)
		}
	}

	ctx, stop := cliutil.InterruptContext()
	defer stop()

	var r *experiments.Runner
	var err error
	if *workload != "" {
		prof, ok := synth.ProfileByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "btbsweep: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		w, berr := synth.Build(prof)
		if berr != nil {
			fmt.Fprintln(os.Stderr, "btbsweep:", berr)
			os.Exit(1)
		}
		r = experiments.NewRunnerFor(sc, []*synth.Workload{w})
	} else if r, err = experiments.NewRunner(sc, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "btbsweep:", err)
		os.Exit(1)
	}
	r.Workers = *workers
	if *storeDir != "" {
		r.Store = store.Open(*storeDir)
	}
	if *sample {
		r.Sampling = core.AutoSampling(sc.Measure)
	}

	rows, err := r.Figure1(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "btbsweep:", err)
		os.Exit(1)
	}
	fmt.Println(experiments.Figure1Table(rows))
}
