// Command confluence-serve runs the simulation daemon: an HTTP/JSON job
// API in front of the confluence engine.
//
// Usage:
//
//	confluence-serve [-addr :8455] [-queue 64] [-workers 2]
//	                 [-quota-rps 0] [-quota-burst 4] [-drain-timeout 60s]
//	                 [-store DIR] [-store-max-bytes N] [-fleet DIR]
//
// Clients POST JobSpecs to /jobs (see the README's Serving section for
// the schema and endpoints), stream progress from /jobs/{id}/events, and
// page results from /jobs/{id}/result. Submissions shed with 503 when the
// queue is full and with 429 when a client exceeds its token-bucket quota
// (-quota-rps sustained submissions per second, bursts of -quota-burst;
// 0 disables quotas).
//
// SIGINT/SIGTERM drains gracefully: new submissions are rejected, jobs
// already accepted run to completion (up to -drain-timeout), then the
// process exits 0. A second signal aborts immediately.
//
// With -store, finished job results persist to a content-addressed
// on-disk store: re-submitting an identical spec is an instant cache hit,
// and a restarted daemon still serves results computed before the
// restart. -store-max-bytes caps the store's size with least-recently-
// used eviction (0 = unlimited).
//
// With -fleet (requires -store), point and sweep jobs run through a
// lease-based work-stealing fleet: each job publishes its cell grid under
// the fleet directory and `confluence-sim -fleet-worker` processes
// pointed there compute cells alongside the daemon. With no workers
// attached jobs execute inline as before; results are byte-identical
// either way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"confluence/internal/serve"
	"confluence/internal/store"
)

func main() {
	addr := flag.String("addr", ":8455", "listen address")
	queue := flag.Int("queue", 64, "queued-job depth before submissions shed with 503")
	workers := flag.Int("workers", 2, "jobs executing concurrently")
	quotaRPS := flag.Float64("quota-rps", 0, "per-client sustained submissions per second (0 = no quota)")
	quotaBurst := flag.Int("quota-burst", 4, "per-client submission burst depth")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "max wait for accepted jobs on shutdown")
	storeDir := flag.String("store", "", "durable result store directory: finished jobs persist and identical re-submissions are cache hits")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "store size cap in bytes with LRU eviction (0 = unlimited; needs -store)")
	fleetDir := flag.String("fleet", "", "fleet coordination directory: point/sweep jobs publish cell grids here for -fleet-worker processes (needs -store)")
	flag.Parse()

	if *fleetDir != "" && *storeDir == "" {
		fatal(errors.New("-fleet needs -store (fleet cells land in the durable store)"))
	}
	if *storeDir != "" {
		// Fail fast on an unusable store directory rather than degrading
		// every Put into a silent no-op for the daemon's whole lifetime.
		if err := os.MkdirAll(*storeDir, 0o755); err != nil {
			fatal(err)
		}
		if *storeMaxBytes > 0 {
			store.Open(*storeDir).SetMaxBytes(*storeMaxBytes)
		}
	} else if *storeMaxBytes > 0 {
		fatal(errors.New("-store-max-bytes needs -store"))
	}

	srv := serve.New(serve.Config{
		QueueDepth: *queue,
		Workers:    *workers,
		QuotaRPS:   *quotaRPS,
		QuotaBurst: *quotaBurst,
		StoreDir:   *storeDir,
		FleetDir:   *fleetDir,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Printf("confluence-serve: listening on %s (queue=%d workers=%d)\n", ln.Addr(), *queue, *workers)
	if *storeDir != "" {
		fmt.Printf("confluence-serve: result store at %s\n", store.Open(*storeDir).Dir())
	}
	if *fleetDir != "" {
		fmt.Printf("confluence-serve: fleet coordination at %s\n", *fleetDir)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fatal(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "confluence-serve: %v, draining (second signal aborts)\n", s)
	}

	// Graceful drain: reject new work, finish what was accepted. A second
	// signal or the drain timeout cuts jobs off via Close.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	ctx, cancelTimeout := context.WithTimeout(ctx, *drainTimeout)
	defer cancelTimeout()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "confluence-serve: drain cut short: %v\n", err)
	}
	srv.Close()

	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		hs.Close()
	}
	fmt.Fprintln(os.Stderr, "confluence-serve: drained, exiting")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confluence-serve:", err)
	os.Exit(1)
}
