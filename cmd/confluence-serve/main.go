// Command confluence-serve runs the simulation daemon: an HTTP/JSON job
// API in front of the confluence engine.
//
// Usage:
//
//	confluence-serve [-addr :8455] [-queue 64] [-workers 2]
//	                 [-quota-rps 0] [-quota-burst 4] [-drain-timeout 60s]
//
// Clients POST JobSpecs to /jobs (see the README's Serving section for
// the schema and endpoints), stream progress from /jobs/{id}/events, and
// page results from /jobs/{id}/result. Submissions shed with 503 when the
// queue is full and with 429 when a client exceeds its token-bucket quota
// (-quota-rps sustained submissions per second, bursts of -quota-burst;
// 0 disables quotas).
//
// SIGINT/SIGTERM drains gracefully: new submissions are rejected, jobs
// already accepted run to completion (up to -drain-timeout), then the
// process exits 0. A second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"confluence/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8455", "listen address")
	queue := flag.Int("queue", 64, "queued-job depth before submissions shed with 503")
	workers := flag.Int("workers", 2, "jobs executing concurrently")
	quotaRPS := flag.Float64("quota-rps", 0, "per-client sustained submissions per second (0 = no quota)")
	quotaBurst := flag.Int("quota-burst", 4, "per-client submission burst depth")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "max wait for accepted jobs on shutdown")
	flag.Parse()

	srv := serve.New(serve.Config{
		QueueDepth: *queue,
		Workers:    *workers,
		QuotaRPS:   *quotaRPS,
		QuotaBurst: *quotaBurst,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Printf("confluence-serve: listening on %s (queue=%d workers=%d)\n", ln.Addr(), *queue, *workers)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fatal(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "confluence-serve: %v, draining (second signal aborts)\n", s)
	}

	// Graceful drain: reject new work, finish what was accepted. A second
	// signal or the drain timeout cuts jobs off via Close.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	ctx, cancelTimeout := context.WithTimeout(ctx, *drainTimeout)
	defer cancelTimeout()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "confluence-serve: drain cut short: %v\n", err)
	}
	srv.Close()

	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		hs.Close()
	}
	fmt.Fprintln(os.Stderr, "confluence-serve: drained, exiting")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confluence-serve:", err)
	os.Exit(1)
}
