package main

// TestServeSmoke is the end-to-end daemon check the Makefile's
// serve-smoke target runs (gated behind SERVE_SMOKE=1 because it builds
// and boots the real binary): build confluence-serve race-enabled, start
// it, submit the golden design point over HTTP, compare the served stats
// against testdata/golden.json, then SIGTERM and expect a clean drain and
// exit 0.

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestServeSmoke(t *testing.T) {
	if os.Getenv("SERVE_SMOKE") != "1" {
		t.Skip("set SERVE_SMOKE=1 to run the daemon smoke test")
	}

	bin := filepath.Join(t.TempDir(), "confluence-serve")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building daemon: %v", err)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "1", "-drain-timeout", "120s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints "confluence-serve: listening on <addr> ...".
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr := strings.Fields(line[i+len("listening on "):])[0]
			base = "http://" + addr
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon never announced its address: %v", sc.Err())
	}
	go func() { // keep the pipe drained
		for sc.Scan() {
		}
	}()

	// The golden workload and Confluence design, as a JobSpec.
	spec := `{
		"workload": "OLTP-DB2",
		"profile": {"functions": 520, "request_types": 6, "concurrency": 6, "seed": 36893},
		"design": "Confluence",
		"cores": 2, "warmup_instr": 30000, "measure_instr": 60000
	}`
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(120 * time.Second)
	for sum.State != "done" {
		if sum.State == "failed" || sum.State == "cancelled" || time.Now().After(deadline) {
			t.Fatalf("job state %q", sum.State)
		}
		time.Sleep(50 * time.Millisecond)
		resp, err := http.Get(base + "/jobs/" + sum.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err = http.Get(base + "/jobs/" + sum.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var page struct {
		Rows []struct {
			Stats struct {
				Instructions uint64  `json:"Instructions"`
				Cycles       float64 `json:"Cycles"`
				BTBMisses    uint64  `json:"BTBMisses"`
				L1IMisses    uint64  `json:"L1IMisses"`
			} `json:"stats"`
		} `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(page.Rows) != 1 {
		t.Fatalf("result rows = %d", len(page.Rows))
	}
	st := page.Rows[0].Stats
	ipc := float64(st.Instructions) / st.Cycles
	perKilo := func(n uint64) float64 { return float64(n) / float64(st.Instructions) * 1000 }

	golden, err := os.ReadFile("../../testdata/golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var pins map[string]struct {
		IPC     float64 `json:"ipc"`
		L1IMPKI float64 `json:"l1i_mpki"`
		BTBMPKI float64 `json:"btb_mpki"`
	}
	if err := json.Unmarshal(golden, &pins); err != nil {
		t.Fatal(err)
	}
	pin := pins["Confluence"]
	for _, c := range []struct {
		what      string
		got, want float64
	}{
		{"IPC", ipc, pin.IPC},
		{"L1IMPKI", perKilo(st.L1IMisses), pin.L1IMPKI},
		{"BTBMPKI", perKilo(st.BTBMisses), pin.BTBMPKI},
	} {
		if math.Abs(c.got-c.want) > 1e-9*math.Max(math.Abs(c.want), 1) {
			t.Errorf("served %s = %.12g, golden pins %.12g", c.what, c.got, c.want)
		}
	}

	// Graceful shutdown: SIGTERM → drain → exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
