// confluence-lint runs the determinism-contract analyzer suite
// (maprange, wallclock, seededrand, baregoroutine — see internal/lint)
// over the module, printing findings as file:line:col: analyzer:
// message. It exits 0 on a clean tree, 1 when there are findings, and
// 2 when the tree cannot be loaded (which includes packages that do
// not compile and internal packages missing a sim/infra
// classification aborting analysis early).
//
// Usage:
//
//	confluence-lint [-json] [-only maprange,wallclock] [packages]
//
// Packages default to ./... relative to the enclosing module root, so
// the tool runs identically from any directory in the repo.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"confluence/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (for CI artifacts)")
	only := flag.String("only", "", "comma-separated analyzer subset to report (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: confluence-lint [-json] [-only names] [packages]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	root, err := lint.ModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(root, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	diags := lint.Check(pkgs)
	if sub := subset(*only); sub != nil {
		kept := diags[:0]
		for _, d := range diags {
			// Directive and classification errors are structural and
			// always reported; -only narrows analyzer findings.
			if sub[d.Analyzer] || d.Analyzer == "directive" || d.Analyzer == "classify" {
				kept = append(kept, d)
			}
		}
		diags = kept
	}

	if *jsonOut {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "confluence-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// subset parses the -only flag into a name set (nil means everything).
func subset(s string) map[string]bool {
	if s == "" {
		return nil
	}
	names := make(map[string]bool)
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names[n] = true
		}
	}
	return names
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confluence-lint:", err)
	os.Exit(2)
}
