// Command benchjson converts `go test -bench` output on stdin into a stable
// JSON document on stdout, so benchmark runs can be committed and diffed
// across PRs (BENCH_pr3_before.json / BENCH_pr3_after.json and successors).
//
// Usage:
//
//	go test -run '^$' -bench=. -benchtime=1x -benchmem ./... | benchjson > bench.json
//	benchjson -compare before.json after.json
//
// Every benchmark line becomes one record carrying the iteration count and
// all reported metrics (ns/op, B/op, allocs/op, and any custom b.ReportMetric
// units such as Minstr/s). Non-benchmark lines are ignored, so the tool
// tolerates -v logs and table dumps interleaved with results. Repeated runs
// of the same benchmark (from `go test -count=N`) collapse into one record
// per benchmark holding the per-metric median across runs, so committed
// snapshots shrug off one-run scheduler spikes on noisy shared machines.
//
// With -compare, the tool diffs two snapshots instead: it prints a
// per-benchmark ns/op delta table (benchmarks present in only one snapshot
// are listed but not judged) and exits non-zero when any common benchmark
// regressed by more than 10% — the gate `make bench-compare` runs over the
// committed BENCH_pr*_{before,after}.json pairs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Record is one benchmark result line.
type Record struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output is the document benchjson emits.
type Output struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	compare := flag.Bool("compare", false, "compare two snapshots: benchjson -compare before.json after.json")
	regress := flag.Float64("regress", 10, "with -compare, fail on ns/op regressions above this percentage")
	floor := flag.Float64("floor", 0, "with -compare, gate only benchmarks whose before ns/op is at least this (sub-floor regressions print as 'noisy?' — one-iteration snapshots cannot time micro-benchmarks reliably)")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: before.json after.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *regress, *floor))
	}

	out := Output{}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				r.Pkg = pkg
				out.Benchmarks = append(out.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out.Benchmarks = mergeRecords(out.Benchmarks)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// mergeRecords collapses repeated runs of the same benchmark (one line per
// `go test -count=N` run) into a single record per benchmark, taking the
// per-metric median across runs and summing iterations to report total
// sampling effort. The median is what makes committed snapshots gate-stable
// on noisy shared machines: a scheduler or cache spike contaminates one run,
// never the middle of five, whereas a mean carries a share of every spike
// straight into bench-compare's regression judgment. Input order of first
// appearance is preserved; single-run benchmarks pass through untouched.
func mergeRecords(recs []Record) []Record {
	runs := map[string][]Record{}
	var order []string
	for _, r := range recs {
		k := benchKey(r)
		if _, seen := runs[k]; !seen {
			order = append(order, k)
		}
		runs[k] = append(runs[k], r)
	}
	out := make([]Record, 0, len(order))
	for _, k := range order {
		rs := runs[k]
		if len(rs) == 1 {
			out = append(out, rs[0])
			continue
		}
		merged := Record{Pkg: rs[0].Pkg, Name: rs[0].Name, Metrics: map[string]float64{}}
		vals := map[string][]float64{}
		for _, r := range rs {
			merged.Iterations += r.Iterations
			for unit, v := range r.Metrics {
				vals[unit] = append(vals[unit], v)
			}
		}
		for unit, vs := range vals {
			sort.Float64s(vs)
			if n := len(vs); n%2 == 1 {
				merged.Metrics[unit] = vs[n/2]
			} else {
				merged.Metrics[unit] = (vs[n/2-1] + vs[n/2]) / 2
			}
		}
		out = append(out, merged)
	}
	return out
}

// loadSnapshot reads a benchjson document from disk.
func loadSnapshot(path string) (Output, error) {
	var out Output
	data, err := os.ReadFile(path)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return out, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// benchKey identifies a benchmark across snapshots.
func benchKey(r Record) string {
	if r.Pkg == "" {
		return r.Name
	}
	return r.Pkg + "." + r.Name
}

// runCompare prints the per-benchmark ns/op delta table and returns the
// process exit code: 0 clean, 1 when any common benchmark at or above the
// gating floor regressed by more than limit percent.
func runCompare(beforePath, afterPath string, limit, floor float64) int {
	before, err := loadSnapshot(beforePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	after, err := loadSnapshot(afterPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	base := make(map[string]Record, len(before.Benchmarks))
	for _, r := range before.Benchmarks {
		base[benchKey(r)] = r
	}
	keys := make([]string, 0, len(after.Benchmarks))
	cur := make(map[string]Record, len(after.Benchmarks))
	for _, r := range after.Benchmarks {
		k := benchKey(r)
		keys = append(keys, k)
		cur[k] = r
	}
	sort.Strings(keys)

	fmt.Printf("%-64s %14s %14s %8s\n", "benchmark", "before ns/op", "after ns/op", "delta")
	regressions := 0
	for _, k := range keys {
		a := cur[k]
		ans, aok := a.Metrics["ns/op"]
		b, inBase := base[k]
		bns, bok := b.Metrics["ns/op"]
		switch {
		case !inBase || !bok:
			if aok {
				fmt.Printf("%-64s %14s %14.1f %8s\n", k, "-", ans, "new")
			}
		case !aok:
			fmt.Printf("%-64s %14.1f %14s %8s\n", k, bns, "-", "gone")
		case bns == 0:
			fmt.Printf("%-64s %14.1f %14.1f %8s\n", k, bns, ans, "n/a")
		default:
			delta := 100 * (ans - bns) / bns
			mark := ""
			if delta > limit {
				if bns >= floor {
					mark = "  << regression"
					regressions++
				} else {
					mark = "  (noisy?)"
				}
			}
			fmt.Printf("%-64s %14.1f %14.1f %+7.1f%%%s\n", k, bns, ans, delta, mark)
		}
	}
	// Benchmarks that vanished entirely (in before, not in after).
	var gone []string
	for k := range base {
		if _, ok := cur[k]; !ok {
			gone = append(gone, k)
		}
	}
	sort.Strings(gone)
	for _, k := range gone {
		fmt.Printf("%-64s %14.1f %14s %8s\n", k, base[k].Metrics["ns/op"], "-", "gone")
	}
	if regressions > 0 {
		fmt.Printf("\n%d benchmark(s) regressed more than %.0f%%\n", regressions, limit)
		return 1
	}
	return 0
}

// parseBench decodes "BenchmarkName-8  10  123 ns/op  4 B/op  1 allocs/op  9.9 unit".
func parseBench(line string) (Record, bool) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	// Strip the trailing -GOMAXPROCS suffix so snapshots from machines with
	// different core counts stay diffable by name.
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := Record{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Record{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}
