// Command benchjson converts `go test -bench` output on stdin into a stable
// JSON document on stdout, so benchmark runs can be committed and diffed
// across PRs (BENCH_pr3_before.json / BENCH_pr3_after.json and successors).
//
// Usage:
//
//	go test -run '^$' -bench=. -benchtime=1x -benchmem ./... | benchjson > bench.json
//
// Every benchmark line becomes one record carrying the iteration count and
// all reported metrics (ns/op, B/op, allocs/op, and any custom b.ReportMetric
// units such as Minstr/s). Non-benchmark lines are ignored, so the tool
// tolerates -v logs and table dumps interleaved with results.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result line.
type Record struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output is the document benchjson emits.
type Output struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	out := Output{}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				r.Pkg = pkg
				out.Benchmarks = append(out.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench decodes "BenchmarkName-8  10  123 ns/op  4 B/op  1 allocs/op  9.9 unit".
func parseBench(line string) (Record, bool) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	// Strip the trailing -GOMAXPROCS suffix so snapshots from machines with
	// different core counts stay diffable by name.
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := Record{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Record{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}
