package main

import (
	"reflect"
	"testing"
)

func rec(pkg, name string, iters int64, ns float64) Record {
	return Record{Pkg: pkg, Name: name, Iterations: iters, Metrics: map[string]float64{"ns/op": ns}}
}

func TestMergeRecordsMedianOfRuns(t *testing.T) {
	// Five runs of one benchmark, one of them a 10x spike: the median must
	// ignore the spike entirely (the property the snapshot gate relies on).
	in := []Record{
		rec("p", "BenchmarkX", 1, 100),
		rec("p", "BenchmarkX", 1, 105),
		rec("p", "BenchmarkX", 1, 1000), // spike
		rec("p", "BenchmarkX", 1, 98),
		rec("p", "BenchmarkX", 1, 102),
	}
	out := mergeRecords(in)
	if len(out) != 1 {
		t.Fatalf("got %d records, want 1", len(out))
	}
	if got := out[0].Metrics["ns/op"]; got != 102 {
		t.Errorf("median ns/op = %v, want 102", got)
	}
	if out[0].Iterations != 5 {
		t.Errorf("iterations = %d, want 5 (summed)", out[0].Iterations)
	}
}

func TestMergeRecordsEvenCountAveragesMiddlePair(t *testing.T) {
	in := []Record{
		rec("p", "BenchmarkX", 1, 100),
		rec("p", "BenchmarkX", 1, 110),
		rec("p", "BenchmarkX", 1, 90),
		rec("p", "BenchmarkX", 1, 400),
	}
	if got := mergeRecords(in)[0].Metrics["ns/op"]; got != 105 {
		t.Errorf("even-count median = %v, want 105", got)
	}
}

func TestMergeRecordsPreservesOrderAndSingles(t *testing.T) {
	in := []Record{
		rec("p", "BenchmarkB", 3, 7),
		rec("q", "BenchmarkA", 1, 50),
		rec("q", "BenchmarkA", 1, 60),
		rec("p", "BenchmarkC", 2, 9),
	}
	out := mergeRecords(in)
	if len(out) != 3 {
		t.Fatalf("got %d records, want 3", len(out))
	}
	names := []string{benchKey(out[0]), benchKey(out[1]), benchKey(out[2])}
	want := []string{"p.BenchmarkB", "q.BenchmarkA", "p.BenchmarkC"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("order = %v, want %v", names, want)
	}
	// Single-run records pass through untouched, including their metrics map.
	if !reflect.DeepEqual(out[0], in[0]) {
		t.Errorf("single-run record mutated: %+v != %+v", out[0], in[0])
	}
	if got := out[1].Metrics["ns/op"]; got != 55 {
		t.Errorf("merged ns/op = %v, want 55", got)
	}
}

func TestMergeRecordsSameNameDifferentPkg(t *testing.T) {
	in := []Record{
		rec("p", "BenchmarkX", 1, 10),
		rec("q", "BenchmarkX", 1, 90),
	}
	if out := mergeRecords(in); len(out) != 2 {
		t.Fatalf("records from different packages merged: %+v", out)
	}
}

func TestParseBenchStripsGOMAXPROCSSuffix(t *testing.T) {
	r, ok := parseBench("BenchmarkX-8  10  123.5 ns/op  4 B/op  1 allocs/op")
	if !ok {
		t.Fatal("parseBench failed")
	}
	if r.Name != "BenchmarkX" {
		t.Errorf("name = %q, want BenchmarkX", r.Name)
	}
	if r.Iterations != 10 || r.Metrics["ns/op"] != 123.5 || r.Metrics["allocs/op"] != 1 {
		t.Errorf("unexpected record: %+v", r)
	}
}
