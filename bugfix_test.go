package confluence

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"confluence/internal/core"
)

// TestRunPreservesPartialOptions is the regression test for the lossy
// Options swap: Run used to replace the whole Options with DefaultOptions()
// whenever Options.Cores was zero, silently discarding a caller's custom
// tuning (everything but Sources). A partially-specified Options must
// behave exactly like the same tuning spelled out on top of
// DefaultOptions().
func TestRunPreservesPartialOptions(t *testing.T) {
	w := mixTestWorkload(t, 0)
	run := func(opt Options) *Result {
		res, err := Run(Config{
			Workload: w, Design: Confluence, Cores: 2, Options: opt,
			WarmupInstr: 30_000, MeasureInstr: 60_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Partial: only the ablation knob set, Options.Cores left zero.
	var partial Options
	partial.HistoryPerCore = true
	// Explicit: the same tuning on top of the full default options.
	explicit := core.DefaultOptions()
	explicit.HistoryPerCore = true

	def := run(Options{})
	got, want := run(partial), run(explicit)
	if *got.Stats != *want.Stats {
		t.Errorf("partially-specified Options diverged from the explicit equivalent:\n  %+v\nvs\n  %+v",
			*got.Stats, *want.Stats)
	}
	// Guard that the preserved knob actually matters (otherwise this test
	// would pass vacuously even if the option were dropped).
	if *got.Stats == *def.Stats {
		t.Error("HistoryPerCore had no effect; the regression guard is vacuous")
	}

	// Sub-config fields survive too: a lone Shift.Lookahead must not be
	// wholesale-replaced because Shift.HistoryEntries was left zero.
	var partialSub Options
	partialSub.Shift.Lookahead = 4
	explicitSub := core.DefaultOptions()
	explicitSub.Shift.Lookahead = 4
	gotSub, wantSub := run(partialSub), run(explicitSub)
	if *gotSub.Stats != *wantSub.Stats {
		t.Errorf("partially-specified Shift config diverged from the explicit equivalent:\n  %+v\nvs\n  %+v",
			*gotSub.Stats, *wantSub.Stats)
	}
	if *gotSub.Stats == *def.Stats {
		t.Error("Shift.Lookahead had no effect; the sub-config guard is vacuous")
	}
}

// TestNoWarmup is the regression test for the warmup sentinel:
// Config.WarmupInstr == 0 means "default 1.5M", which made a genuinely
// warmup-free run impossible to request. Config.NoWarmup is the escape
// hatch and must match a core-level run with a zero-length warmup phase
// bit-exactly.
func TestNoWarmup(t *testing.T) {
	w := mixTestWorkload(t, 0)
	res, err := Run(Config{
		Workload: w, Design: Confluence, Cores: 2,
		NoWarmup: true, MeasureInstr: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}

	opt := core.DefaultOptions()
	opt.Cores = 2
	sys, err := core.NewSystem(w, core.Confluence, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	want, err := sys.Run(0, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if *res.Stats != *want {
		t.Errorf("NoWarmup run diverged from a zero-warmup core run:\n  %+v\nvs\n  %+v",
			*res.Stats, *want)
	}

	// And it must differ from a warmed run: cold caches show up in the
	// measurement window.
	warmed, err := Run(Config{
		Workload: w, Design: Confluence, Cores: 2,
		WarmupInstr: 30_000, MeasureInstr: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if *res.Stats == *warmed.Stats {
		t.Error("NoWarmup run identical to a warmed run")
	}
}

// TestWorkloadFromTraceValidatesAllFiles is the regression test for
// validate-only-the-first-file: a capture directory with a corrupt second
// file must fail at WorkloadFromTrace, not mid-simulation.
func TestWorkloadFromTraceValidatesAllFiles(t *testing.T) {
	w := mixTestWorkload(t, 0)
	dir := t.TempDir()
	if err := CaptureTrace(w, dir, 2, 5_000); err != nil {
		t.Fatal(err)
	}

	// The intact capture validates.
	if _, err := WorkloadFromTrace(dir); err != nil {
		t.Fatalf("valid capture rejected: %v", err)
	}

	// Corrupt the second file's header; the first stays valid.
	second := filepath.Join(dir, "core-001.trace")
	if err := os.WriteFile(second, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := WorkloadFromTrace(dir)
	if err == nil {
		t.Fatal("capture with corrupt second file accepted")
	}
	if !strings.Contains(err.Error(), "core-001.trace") {
		t.Errorf("error does not name the corrupt file: %v", err)
	}
}
