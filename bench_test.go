package confluence

// The benchmarks regenerate the paper's tables and figures — one benchmark
// per table/figure — and report the headline numbers as custom metrics.
// Run them with:
//
//	go test -bench=. -benchmem
//
// REPRO_SCALE (small|default|paper) controls simulation effort; benchmarks
// default to the small scale so the full suite stays in CI territory. Use
// cmd/confluence-sim for full-scale tables.
//
// Each iteration runs the experiment from scratch (fresh caches); workload
// generation is shared, since programs are inputs, not the system under
// test. Pass -v to see the regenerated tables.

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"confluence/internal/core"
	"confluence/internal/experiments"
	"confluence/internal/stats"
	"confluence/internal/synth"
)

var (
	benchOnce sync.Once
	benchWs   []*synth.Workload
	benchErr  error
)

func benchScale() experiments.Scale {
	if sc, ok := experiments.ScaleByName(os.Getenv("REPRO_SCALE")); ok {
		return sc
	}
	return experiments.Small
}

func benchWorkloads(b *testing.B) []*synth.Workload {
	b.Helper()
	benchOnce.Do(func() {
		for _, prof := range synth.Profiles() {
			w, err := synth.Build(prof)
			if err != nil {
				benchErr = err
				return
			}
			benchWs = append(benchWs, w)
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchWs
}

func benchRunner(b *testing.B) *experiments.Runner {
	return experiments.NewRunnerFor(benchScale(), benchWorkloads(b))
}

// BenchmarkFigure1_BTBCapacitySweep regenerates Figure 1: BTB MPKI as a
// function of BTB capacity, 1K..32K entries, per workload.
func BenchmarkFigure1_BTBCapacitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		rows, err := r.Figure1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		var at1K, at16K []float64
		for _, row := range rows {
			at1K = append(at1K, row.MPKI[0])
			at16K = append(at16K, row.MPKI[4])
		}
		b.ReportMetric(stats.Mean(at1K), "mpki@1K")
		b.ReportMetric(stats.Mean(at16K), "mpki@16K")
		if i == 0 {
			b.Log("\n" + experiments.Figure1Table(rows).String())
		}
	}
}

// BenchmarkFigure1_Sampled regenerates Figure 1 in SMARTS-style sampled
// mode — the headline perf pairing with BenchmarkFigure1_BTBCapacitySweep
// above: same sweep, ≥10× fewer detailed instructions (the detailx
// metric), with the sweep's prefetcherless cells exact via full-coverage
// probe tallies.
func BenchmarkFigure1_Sampled(b *testing.B) {
	sc := benchScale()
	sp := core.AutoSampling(sc.Measure)
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		r.Sampling = sp
		rows, err := r.Figure1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		var at1K []float64
		for _, row := range rows {
			at1K = append(at1K, row.MPKI[0])
		}
		b.ReportMetric(stats.Mean(at1K), "mpki@1K")
		b.ReportMetric(float64(sc.Warmup+sc.Measure)/float64(sp.DetailedInstr()), "detailx")
		if i == 0 {
			b.Log("\n" + experiments.Figure1Table(rows).String())
		}
	}
}

// BenchmarkTable2_BranchDensity regenerates Table 2: static and dynamic
// branch density per demand-fetched 64B block.
func BenchmarkTable2_BranchDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		rows, err := r.Table2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		var st, dy []float64
		for _, row := range rows {
			st = append(st, row.Static)
			dy = append(dy, row.Dynamic)
		}
		b.ReportMetric(stats.Mean(st), "static/blk")
		b.ReportMetric(stats.Mean(dy), "dynamic/blk")
		if i == 0 {
			b.Log("\n" + experiments.Table2Table(rows).String())
		}
	}
}

// BenchmarkFigure2_ConventionalFrontends regenerates Figure 2: performance
// vs area for the conventional instruction-supply mechanisms.
func BenchmarkFigure2_ConventionalFrontends(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		points, err := r.Figure2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Design == core.TwoLevelSHIFT {
				b.ReportMetric(p.FracOfIdeal, "2LevSHIFT/ideal")
			}
		}
		if i == 0 {
			b.Log("\n" + experiments.PerfAreaTable("Figure 2", points).String())
		}
	}
}

// BenchmarkFigure6_Confluence regenerates Figure 6 — the headline
// performance/area result including Confluence.
func BenchmarkFigure6_Confluence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		points, err := r.Figure6(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			switch p.Design {
			case core.Confluence:
				b.ReportMetric(p.FracOfIdeal, "confluence/ideal")
				b.ReportMetric(p.RelArea, "confluence-area")
			case core.Ideal:
				b.ReportMetric(p.RelPerf, "ideal-speedup")
			}
		}
		if i == 0 {
			b.Log("\n" + experiments.PerfAreaTable("Figure 6", points).String())
		}
	}
}

// BenchmarkFigure7_BTBDesignsWithSHIFT regenerates Figure 7: speedups of
// the BTB designs when all are paired with SHIFT.
func BenchmarkFigure7_BTBDesignsWithSHIFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		rows, err := r.Figure7(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		var conf, ideal []float64
		for _, row := range rows {
			conf = append(conf, row.Speedup[core.Confluence])
			ideal = append(ideal, row.Speedup[core.IdealBTBSHIFT])
		}
		b.ReportMetric(stats.Geomean(conf), "confluence-speedup")
		b.ReportMetric(stats.Geomean(ideal), "idealbtb-speedup")
		if i == 0 {
			b.Log("\n" + experiments.Figure7Table(rows).String())
		}
	}
}

// BenchmarkFigure8_AirBTBBreakdown regenerates Figure 8: the cumulative
// AirBTB coverage decomposition.
func BenchmarkFigure8_AirBTBBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		rows, err := r.Figure8(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		var totals []float64
		for _, row := range rows {
			totals = append(totals, row.Total)
		}
		b.ReportMetric(stats.Mean(totals), "coverage%")
		if i == 0 {
			b.Log("\n" + experiments.Figure8Table(rows).String())
		}
	}
}

// BenchmarkFigure9_MissCoverage regenerates Figure 9: BTB misses eliminated
// by PhantomBTB, AirBTB, and a 16K-entry conventional BTB.
func BenchmarkFigure9_MissCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		rows, err := r.Figure9(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		var ph, air, conv []float64
		for _, row := range rows {
			ph = append(ph, row.Phantom)
			air = append(air, row.AirBTB)
			conv = append(conv, row.Conv16K)
		}
		b.ReportMetric(stats.Mean(ph), "phantom%")
		b.ReportMetric(stats.Mean(air), "airbtb%")
		b.ReportMetric(stats.Mean(conv), "16K%")
		if i == 0 {
			b.Log("\n" + experiments.Figure9Table(rows).String())
		}
	}
}

// BenchmarkFigure10_AirBTBSensitivity regenerates Figure 10: bundle size ×
// overflow buffer sensitivity.
func BenchmarkFigure10_AirBTBSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		rows, err := r.Figure10(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		var chosen []float64 // B:3, OB:32 — the paper's final design
		for _, row := range rows {
			chosen = append(chosen, row.Coverage[1])
		}
		b.ReportMetric(stats.Mean(chosen), "B3OB32%")
		if i == 0 {
			b.Log("\n" + experiments.Figure10Table(rows).String())
		}
	}
}

// BenchmarkGridScheduler_WorkerScaling regenerates Figure 6 from a cold
// cache at different worker counts — the wall-clock win of the grid
// scheduler. The speedup over workers=1 approaches the core count on
// multi-core machines (cells are embarrassingly parallel); results are
// bit-identical at every width (see TestParallelDeterminism).
func BenchmarkGridScheduler_WorkerScaling(b *testing.B) {
	widths := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		widths = append(widths, n)
	}
	for _, workers := range widths {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := benchRunner(b)
				r.Workers = workers
				if _, err := r.Figure6(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIntraWorkerScaling measures one wide simulation (8 simulated
// cores, the configuration grid-level parallelism cannot help) under
// bound-weave in-run parallelism: serial exact, parallel exact (K=1, still
// bit-identical), and the K=8 approximation. On the 1-CPU dev container the
// widths collapse; CI (multi-core) shows the spread and the bench-smoke job
// asserts the K=8 speedup.
func BenchmarkIntraWorkerScaling(b *testing.B) {
	w := benchWorkloads(b)[0]
	type intraMode struct {
		name           string
		workers, epoch int
	}
	modes := []intraMode{{"serial", 1, 1}}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		modes = append(modes,
			intraMode{fmt.Sprintf("exact-w%d", n), n, 1},
			intraMode{fmt.Sprintf("k8-w%d", n), n, 8},
		)
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			var instr uint64
			for i := 0; i < b.N; i++ {
				opt := core.DefaultOptions()
				opt.Cores = 8
				opt.IntraWorkers = m.workers
				opt.EpochBlocks = m.epoch
				sys, err := core.NewSystem(w, core.Confluence, opt)
				if err != nil {
					b.Fatal(err)
				}
				st, err := sys.Run(0, 250_000)
				if err != nil {
					b.Fatal(err)
				}
				instr += st.Instructions
			}
			b.ReportMetric(float64(instr)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

// TestIntraWallClockSmoke is the CI bench-smoke gate (INTRA_SMOKE=1): at 8
// simulated cores with several OS CPUs, K=8 bound-weave with GOMAXPROCS
// workers must beat the serial engine by ≥1.3× wall clock. The CI job runs
// it warn-only — wall-clock assertions on shared runners flake — and
// uploads the logged ratio as an artifact.
func TestIntraWallClockSmoke(t *testing.T) {
	if os.Getenv("INTRA_SMOKE") == "" {
		t.Skip("set INTRA_SMOKE=1 to run the wall-clock smoke test")
	}
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		t.Skipf("GOMAXPROCS=%d: no parallelism to measure", n)
	}
	w, err := BuildWorkload("OLTP-DB2")
	if err != nil {
		t.Fatal(err)
	}
	const instr = 1_000_000
	run := func(workers, epoch int) time.Duration {
		opt := core.DefaultOptions()
		opt.Cores = 8
		opt.IntraWorkers = workers
		opt.EpochBlocks = epoch
		sys, err := core.NewSystem(w, core.Confluence, opt)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := sys.Run(0, instr); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	run(1, 1) // warm the program image & predecode caches
	serial := run(1, 1)
	par := run(n, 8)
	ratio := serial.Seconds() / par.Seconds()
	t.Logf("intra-smoke: 8 simulated cores, GOMAXPROCS=%d: serial %v, K=8/w%d %v, speedup %.2fx",
		n, serial, n, par, ratio)
	if ratio < 1.3 {
		t.Errorf("bound-weave speedup %.2fx below the 1.3x floor", ratio)
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: instructions
// simulated per wall-clock second for the Confluence configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	ws := benchWorkloads(b)
	w := ws[0]
	opt := core.DefaultOptions()
	opt.Cores = 4
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(w, core.Confluence, opt)
		if err != nil {
			b.Fatal(err)
		}
		st, err := sys.Run(0, 250_000)
		if err != nil {
			b.Fatal(err)
		}
		instr += st.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}
