package confluence

import (
	"testing"

	"confluence/internal/synth"
)

// mixTestWorkload builds a small fixed-seed workload for the mix tests;
// variant perturbs the profile so distinct variants are genuinely different
// programs.
func mixTestWorkload(t *testing.T, variant int) *Workload {
	t.Helper()
	p := synth.OLTPDB2()
	p.Functions = 520 + 60*variant
	p.RequestTypes = 6
	p.Concurrency = 6
	p.Seed = 0x31c0 + uint64(variant)
	w, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestHomogeneousMixBitIdentical pins the load-bearing invariant of the
// mix machinery: a mix of N references to one workload must be
// bit-identical to the homogeneous run of that workload — same aggregate
// stats, same per-core stats. Slot 0's address-space tag is zero, so the
// tagging plumbing must be a perfect identity here.
func TestHomogeneousMixBitIdentical(t *testing.T) {
	w := mixTestWorkload(t, 0)
	for _, dp := range []DesignPoint{Confluence, PhantomSHIFT} {
		run := func(cfg Config) *Result {
			cfg.Design = dp
			cfg.Cores = 2
			cfg.WarmupInstr = 30_000
			cfg.MeasureInstr = 60_000
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		homog := run(Config{Workload: w})
		// A rebuilt copy (distinct pointer, same profile) is the same
		// generated program and must collapse into the same address-space
		// slot — `-mix X,X` on the CLI builds exactly this shape.
		rebuilt := mixTestWorkload(t, 0)
		for _, mix := range [][]*Workload{{w}, {w, w}, {w, rebuilt}} {
			m := run(Config{Mix: mix})
			if *m.Stats != *homog.Stats {
				t.Errorf("%v: mix of %d copies diverged from homogeneous run:\n  %+v\nvs\n  %+v",
					dp, len(mix), *m.Stats, *homog.Stats)
			}
			if len(m.PerCore) != len(homog.PerCore) {
				t.Fatalf("%v: per-core counts differ", dp)
			}
			for i := range m.PerCore {
				if *m.PerCore[i] != *homog.PerCore[i] {
					t.Errorf("%v: core %d diverged under a homogeneous mix", dp, i)
				}
			}
		}
	}
}

// TestPerCoreStatsSumToAggregate pins Result.PerCore's contract across
// design points: the aggregate Stats is the in-order sum of the per-core
// stats, bit-exactly (same summation order as the simulator's own).
func TestPerCoreStatsSumToAggregate(t *testing.T) {
	a := mixTestWorkload(t, 0)
	b := mixTestWorkload(t, 1)
	for _, dp := range []DesignPoint{Base1K, FDP1K, PhantomSHIFT, Confluence, Ideal} {
		res, err := Run(Config{
			Mix: []*Workload{a, b}, Design: dp, Cores: 4,
			WarmupInstr: 30_000, MeasureInstr: 60_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.PerCore) != 4 {
			t.Fatalf("%v: %d per-core stats, want 4", dp, len(res.PerCore))
		}
		var sum Stats
		for _, st := range res.PerCore {
			sum.Add(st)
		}
		if sum != *res.Stats {
			t.Errorf("%v: per-core stats do not sum to the aggregate:\n  sum %+v\nvs\n  agg %+v",
				dp, sum, *res.Stats)
		}
	}
}

// TestHeterogeneousMixDiffers guards against the mix plumbing silently
// running one workload everywhere: consolidating two distinct programs
// must differ from either homogeneous run, and per-core stats must differ
// across slots.
func TestHeterogeneousMixDiffers(t *testing.T) {
	a := mixTestWorkload(t, 0)
	b := mixTestWorkload(t, 1)
	run := func(cfg Config) *Result {
		cfg.Design = Confluence
		cfg.Cores = 2
		cfg.WarmupInstr = 30_000
		cfg.MeasureInstr = 60_000
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	mix := run(Config{Mix: []*Workload{a, b}})
	if *mix.Stats == *run(Config{Workload: a}).Stats {
		t.Error("heterogeneous mix identical to homogeneous run of slot 0")
	}
	if *mix.Stats == *run(Config{Workload: b}).Stats {
		t.Error("heterogeneous mix identical to homogeneous run of slot 1")
	}
	if *mix.PerCore[0] == *mix.PerCore[1] {
		t.Error("cores running distinct workloads produced identical stats")
	}
	// And the mix itself is deterministic.
	if again := run(Config{Mix: []*Workload{a, b}}); *again.Stats != *mix.Stats {
		t.Error("heterogeneous mix is not deterministic")
	}
}

// TestMixValidation covers the Config.Workload/Config.Mix contract.
func TestMixValidation(t *testing.T) {
	w := mixTestWorkload(t, 0)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"neither", Config{Design: Confluence}},
		{"both", Config{Workload: w, Mix: []*Workload{w}, Design: Confluence}},
		{"nil in mix", Config{Mix: []*Workload{w, nil}, Design: Confluence}},
		{"wider than CMP", Config{Mix: []*Workload{w, w, w}, Cores: 2, Design: Confluence}},
	}
	for _, c := range cases {
		if _, err := Run(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestHarmonicMeanAndWeightedSpeedup covers the public per-core metric
// helpers on real results.
func TestHarmonicMeanAndWeightedSpeedup(t *testing.T) {
	w := mixTestWorkload(t, 0)
	res, err := Run(Config{
		Workload: w, Design: Confluence, Cores: 2,
		WarmupInstr: 30_000, MeasureInstr: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	hm := HarmonicMeanIPC(res.PerCore)
	if hm <= 0 {
		t.Errorf("harmonic-mean IPC = %v", hm)
	}
	if hm > res.Stats.IPC()*1.01 {
		t.Errorf("harmonic mean %v exceeds aggregate IPC %v", hm, res.Stats.IPC())
	}
	ws, err := WeightedSpeedup(res.PerCore, res.PerCore)
	if err != nil {
		t.Fatal(err)
	}
	if ws != 1.0 {
		t.Errorf("self weighted speedup = %v, want 1.0", ws)
	}
	if _, err := WeightedSpeedup(res.PerCore, res.PerCore[:1]); err == nil {
		t.Error("mismatched lengths accepted")
	}
}
