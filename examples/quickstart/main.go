// Quickstart: build one server workload, run the baseline frontend and
// Confluence on an 8-core CMP, and print the headline comparison.
package main

import (
	"context"
	"fmt"
	"log"

	"confluence"
)

func main() {
	w, err := confluence.BuildWorkload("OLTP-DB2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d functions, %d KB of code\n",
		w.Prof.Name, len(w.Prog.Funcs), w.Prog.FootprintBytes()>>10)

	// RunMany fans the two simulations out across CPUs and returns results
	// in input order.
	results, err := confluence.RunMany(context.Background(), 0, []confluence.Config{
		{Workload: w, Design: confluence.Base1K, Cores: 8},
		{Workload: w, Design: confluence.Confluence, Cores: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	base, conf := results[0], results[1]

	fmt.Printf("\n%-12s %8s %10s %10s %10s\n", "design", "IPC", "BTB MPKI", "L1-I MPKI", "rel. area")
	for _, r := range results {
		fmt.Printf("%-12s %8.3f %10.1f %10.1f %10.4f\n",
			r.Config.Design, r.Stats.IPC(), r.Stats.BTBMPKI(), r.Stats.L1IMPKI(), r.RelativeArea)
	}
	fmt.Printf("\nConfluence speedup over baseline: %.2fx\n",
		conf.Stats.IPC()/base.Stats.IPC())
}
