// Prefetcher comparison: no prefetch vs fetch-directed prefetching vs
// SHIFT on the media-streaming workload — the L1-I side of the paper's
// story (§2.1-2.2): FDP's lookahead is limited and collapses on redirects;
// stream-based prefetching runs ahead autonomously.
package main

import (
	"context"
	"fmt"
	"log"

	"confluence"
)

func main() {
	w, err := confluence.BuildWorkload("Media-Streaming")
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		name   string
		design confluence.DesignPoint
	}
	rows := []row{
		{"no prefetch", confluence.Base1K},
		{"FDP", confluence.FDP1K},
		{"SHIFT", confluence.Base1KSHIFT},
	}

	// All three designs simulate concurrently; RunMany keeps input order.
	cfgs := make([]confluence.Config, len(rows))
	for i, r := range rows {
		cfgs[i] = confluence.Config{Workload: w, Design: r.design, Cores: 8}
	}
	results, err := confluence.RunMany(context.Background(), 0, cfgs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %8s %10s %12s %14s\n",
		"prefetcher", "IPC", "L1-I MPKI", "pref issued", "pref useful")
	var base float64
	for i, r := range rows {
		st := results[i].Stats
		if i == 0 {
			base = st.L1IMPKI()
		}
		fmt.Printf("%-14s %8.3f %10.1f %12d %14d\n",
			r.name, st.IPC(), st.L1IMPKI(), st.PrefIssued, st.PrefUseful)
		if i > 0 {
			fmt.Printf("%14s coverage of baseline L1-I misses: %.0f%%\n",
				"", 100*(1-st.L1IMPKI()/base))
		}
	}
}
