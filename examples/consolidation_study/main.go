// Consolidation study: consolidate two heterogeneous server workloads onto
// one CMP (core i runs Mix[i mod 2]) and measure what sharing one
// LLC-virtualized SHIFT history across competing control-flow footprints
// costs, against the per-core private-history ablation and against each
// workload running the machine alone.
package main

import (
	"context"
	"fmt"
	"log"

	"confluence"
)

const cores = 4

func main() {
	var mix []*confluence.Workload
	for _, name := range []string{"OLTP-DB2", "Web-Frontend"} {
		w, err := confluence.BuildWorkload(name)
		if err != nil {
			log.Fatal(err)
		}
		mix = append(mix, w)
	}

	base := confluence.Config{
		Mix: mix, Design: confluence.Confluence, Cores: cores,
		WarmupInstr: 400_000, MeasureInstr: 400_000,
	}
	shared, private := base, base
	// A partially-specified Options survives Run's defaulting: only the
	// history placement changes, everything else stays the paper's config.
	private.Options.HistoryPerCore = true

	// The two mix variants, plus each workload running the CMP alone (the
	// weighted-speedup baseline), fanned out across CPUs.
	cfgs := []confluence.Config{shared, private}
	for _, w := range mix {
		solo := base
		solo.Mix = nil
		solo.Workload = w
		cfgs = append(cfgs, solo)
	}
	results, err := confluence.RunMany(context.Background(), 0, cfgs)
	if err != nil {
		log.Fatal(err)
	}
	sh, pr, alone := results[0], results[1], results[2:]

	fmt.Printf("consolidation on %d cores: core i runs Mix[i mod %d]\n\n", cores, len(mix))
	fmt.Printf("%-4s %-16s %12s %13s %10s\n", "core", "workload", "IPC shared", "IPC private", "IPC alone")
	for i, st := range sh.PerCore {
		w := mix[i%len(mix)]
		fmt.Printf("%-4d %-16s %12.3f %13.3f %10.3f\n",
			i, w.Prof.Name, st.IPC(), pr.PerCore[i].IPC(), alone[i%len(mix)].PerCore[i].IPC())
	}

	// Per-core baselines in core order: core i alone ran its own workload.
	aloneByCore := make([]*confluence.Stats, cores)
	for i := range aloneByCore {
		aloneByCore[i] = alone[i%len(mix)].PerCore[i]
	}
	wsShared, err := confluence.WeightedSpeedup(sh.PerCore, aloneByCore)
	if err != nil {
		log.Fatal(err)
	}
	wsPrivate, err := confluence.WeightedSpeedup(pr.PerCore, aloneByCore)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-28s %10s %10s\n", "", "shared", "private")
	fmt.Printf("%-28s %10.3f %10.3f\n", "harmonic-mean IPC",
		confluence.HarmonicMeanIPC(sh.PerCore), confluence.HarmonicMeanIPC(pr.PerCore))
	fmt.Printf("%-28s %10.3f %10.3f\n", "weighted speedup vs alone", wsShared, wsPrivate)
	fmt.Printf("%-28s %10.2f %10.2f\n", "L1-I MPKI", sh.Stats.L1IMPKI(), pr.Stats.L1IMPKI())
	fmt.Printf("\nsharing one SHIFT history across the mix costs %.1f%% weighted speedup\n",
		100*(wsPrivate-wsShared)/wsPrivate)
}
