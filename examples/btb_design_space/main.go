// BTB design space: walks the capacity sweep of Figure 1 and the AirBTB
// bundle/overflow sensitivity of Figure 10 on one workload, using the
// library's Options to size structures.
package main

import (
	"context"
	"fmt"
	"log"

	"confluence"
	"confluence/internal/airbtb"
	"confluence/internal/core"
)

func main() {
	w, err := confluence.BuildWorkload("Web-Frontend")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Both sweeps run all their design-space points concurrently via
	// RunMany; output stays in sweep order.
	fmt.Println("Conventional BTB capacity sweep (Web-Frontend, no prefetch):")
	entriesSweep := []int{1024, 2048, 4096, 8192, 16384, 32768}
	cfgs := make([]confluence.Config, len(entriesSweep))
	for i, entries := range entriesSweep {
		opt := core.DefaultOptions()
		opt.SweepBTBEntries = entries
		cfgs[i] = confluence.Config{Workload: w, Design: core.SweepBTB, Cores: 4, Options: opt}
	}
	results, err := confluence.RunMany(ctx, 0, cfgs)
	if err != nil {
		log.Fatal(err)
	}
	base := results[0].Stats.BTBMPKI()
	for i, entries := range entriesSweep {
		mpki := results[i].Stats.BTBMPKI()
		fmt.Printf("  %6d entries: %6.2f MPKI (%5.1f%% of 1K's misses eliminated)\n",
			entries, mpki, 100*(1-mpki/base))
	}

	fmt.Println("\nAirBTB sensitivity (B = entries/bundle, OB = overflow entries):")
	airSweep := []airbtb.Config{
		{Bundles: 512, EntriesPerBundle: 3, OverflowEntries: 0},
		{Bundles: 512, EntriesPerBundle: 3, OverflowEntries: 32},
		{Bundles: 512, EntriesPerBundle: 4, OverflowEntries: 0},
		{Bundles: 512, EntriesPerBundle: 4, OverflowEntries: 32},
	}
	cfgs = make([]confluence.Config, len(airSweep))
	for i, cfg := range airSweep {
		opt := core.DefaultOptions()
		opt.Air = cfg
		cfgs[i] = confluence.Config{Workload: w, Design: confluence.Confluence, Cores: 4, Options: opt}
	}
	if results, err = confluence.RunMany(ctx, 0, cfgs); err != nil {
		log.Fatal(err)
	}
	for i, cfg := range airSweep {
		fmt.Printf("  B:%d OB:%-3d -> %6.2f MPKI, %4.1f KB of storage\n",
			cfg.EntriesPerBundle, cfg.OverflowEntries,
			results[i].Stats.BTBMPKI(), float64(cfg.StorageBits())/8/1024)
	}
}
