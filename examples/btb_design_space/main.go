// BTB design space: walks the capacity sweep of Figure 1 and the AirBTB
// bundle/overflow sensitivity of Figure 10 on one workload, using the
// library's Options to size structures.
package main

import (
	"fmt"
	"log"

	"confluence"
	"confluence/internal/airbtb"
	"confluence/internal/core"
)

func main() {
	w, err := confluence.BuildWorkload("Web-Frontend")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Conventional BTB capacity sweep (Web-Frontend, no prefetch):")
	base := 0.0
	for _, entries := range []int{1024, 2048, 4096, 8192, 16384, 32768} {
		opt := core.DefaultOptions()
		opt.SweepBTBEntries = entries
		res, err := confluence.Run(confluence.Config{
			Workload: w, Design: core.SweepBTB, Cores: 4, Options: opt,
		})
		if err != nil {
			log.Fatal(err)
		}
		if entries == 1024 {
			base = res.Stats.BTBMPKI()
		}
		fmt.Printf("  %6d entries: %6.2f MPKI (%5.1f%% of 1K's misses eliminated)\n",
			entries, res.Stats.BTBMPKI(), 100*(1-res.Stats.BTBMPKI()/base))
	}

	fmt.Println("\nAirBTB sensitivity (B = entries/bundle, OB = overflow entries):")
	for _, cfg := range []airbtb.Config{
		{Bundles: 512, EntriesPerBundle: 3, OverflowEntries: 0},
		{Bundles: 512, EntriesPerBundle: 3, OverflowEntries: 32},
		{Bundles: 512, EntriesPerBundle: 4, OverflowEntries: 0},
		{Bundles: 512, EntriesPerBundle: 4, OverflowEntries: 32},
	} {
		opt := core.DefaultOptions()
		opt.Air = cfg
		res, err := confluence.Run(confluence.Config{
			Workload: w, Design: confluence.Confluence, Cores: 4, Options: opt,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  B:%d OB:%-3d -> %6.2f MPKI, %4.1f KB of storage\n",
			cfg.EntriesPerBundle, cfg.OverflowEntries,
			res.Stats.BTBMPKI(), float64(cfg.StorageBits())/8/1024)
	}
}
