// OLTP frontend study: a deep-dive into where an OLTP core's cycles go
// under each frontend design — the per-mechanism stall decomposition behind
// the paper's Figures 6 and 7.
package main

import (
	"context"
	"fmt"
	"log"

	"confluence"
)

func main() {
	w, err := confluence.BuildWorkload("OLTP-Oracle")
	if err != nil {
		log.Fatal(err)
	}

	designs := []confluence.DesignPoint{
		confluence.Base1K,
		confluence.FDP1K,
		confluence.TwoLevelFDP,
		confluence.TwoLevelSHIFT,
		confluence.Confluence,
		confluence.Ideal,
	}

	// The six designs simulate concurrently; the table prints in list order.
	cfgs := make([]confluence.Config, len(designs))
	for i, dp := range designs {
		cfgs[i] = confluence.Config{Workload: w, Design: dp, Cores: 8}
	}
	results, err := confluence.RunMany(context.Background(), 0, cfgs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("OLTP-Oracle cycle decomposition (cycles per kilo-instruction)\n\n")
	fmt.Printf("%-18s %7s | %7s %7s %7s %7s %7s %7s\n",
		"design", "IPC", "issue", "backend", "L1-I", "misfet", "bubble", "resolve")
	for i, dp := range designs {
		st := results[i].Stats
		k := float64(st.Instructions) / 1000
		fmt.Printf("%-18s %7.3f | %7.1f %7.1f %7.1f %7.1f %7.1f %7.1f\n",
			dp, st.IPC(),
			st.IssueCycles/k, st.BackendCycles/k, st.L1IStallCycles/k,
			st.MisfetchCycles/k, st.BubbleCycles/k, st.ResolveCycles/k)
	}

	fmt.Println("\nReading the table:")
	fmt.Println("  - FDP trims L1-I stalls only a little (limited BPU lookahead).")
	fmt.Println("  - 2LevelBTB+SHIFT removes most L1-I stalls but pays L2-BTB bubbles.")
	fmt.Println("  - Confluence removes the bubbles too: its BTB is filled ahead of")
	fmt.Println("    the fetch stream by the same prefetcher that fills the L1-I.")
}
