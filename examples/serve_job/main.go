// Serving quickstart: boot the job daemon in-process, submit a JobSpec
// over HTTP exactly as a remote client would, follow its progress, and
// page the result — the programmatic twin of running `confluence-serve`
// and curling it. The served stats are bit-identical to calling
// confluence.Run with the same parameters directly (the serving
// determinism contract; see README "Serving").
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"confluence"
	"confluence/internal/serve"
)

func main() {
	// A daemon with one worker and a 16-deep queue; Handler() is the same
	// mux `confluence-serve` listens on.
	srv := serve.New(serve.Config{Workers: 1, QueueDepth: 16})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The job, as the strict JSON schema a remote client POSTs. Unknown
	// fields or names would be rejected with 400.
	spec := `{
		"workload": "OLTP-DB2",
		"design": "Confluence",
		"cores": 2, "no_warmup": true, "measure_instr": 120000
	}`
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted %s (%d): state %s\n", job.ID, resp.StatusCode, job.State)

	// Poll to completion (clients wanting push get the same events over
	// SSE from /jobs/{id}/events).
	for job.State != "done" && job.State != "failed" && job.State != "cancelled" {
		time.Sleep(10 * time.Millisecond)
		resp, err := http.Get(ts.URL + "/jobs/" + job.ID)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}
	fmt.Printf("job %s finished: %s\n", job.ID, job.State)

	// Page the result rows (canonical spec-expansion order).
	resp, err = http.Get(ts.URL + "/jobs/" + job.ID + "/result")
	if err != nil {
		log.Fatal(err)
	}
	var page struct {
		Rows []struct {
			Mix    string            `json:"mix"`
			Design string            `json:"design"`
			Stats  *confluence.Stats `json:"stats"`
		} `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	for _, r := range page.Rows {
		fmt.Printf("%-12s %-12s IPC=%.3f btbMPKI=%.1f l1iMPKI=%.1f\n",
			r.Mix, r.Design, r.Stats.IPC(), r.Stats.BTBMPKI(), r.Stats.L1IMPKI())
	}
}
