package confluence

import (
	"testing"

	"confluence/internal/synth"
)

// replayWorkload builds a reduced workload for capture/replay tests: big
// enough to exercise every frontend mechanism, small enough to capture in
// a test.
func replayWorkload(t *testing.T) *Workload {
	t.Helper()
	p := synth.OLTPDB2()
	p.Functions = 480
	p.RequestTypes = 5
	p.Concurrency = 6
	p.Seed = 0x5eed5
	w, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestReplayEquivalence is the acceptance property of the trace-replay
// path: a capture replayed through the timing model produces bit-identical
// Stats to the live executors that generated it, across multiple designs
// and CMP widths. Any divergence — a lossy codec field, a seed mismatch,
// an off-by-one in the striping — shows up as a differing counter.
func TestReplayEquivalence(t *testing.T) {
	w := replayWorkload(t)

	const (
		warmup   = 30_000
		measure  = 60_000
		capCores = 3
		// Capture enough instructions per core that the replay never wraps:
		// a run consumes warmup+measure plus at most one basic block.
		capInstr = warmup + measure + 5_000
	)
	dir := t.TempDir()
	if err := CaptureTrace(w, dir, capCores, capInstr); err != nil {
		t.Fatal(err)
	}

	for _, design := range []DesignPoint{FDP1K, Confluence} {
		for _, cores := range []int{2, 3} {
			cfg := Config{
				Workload: w, Design: design, Cores: cores,
				WarmupInstr: warmup, MeasureInstr: measure,
			}
			live, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v/%d cores live: %v", design, cores, err)
			}
			cfg.TraceDir = dir
			replayed, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v/%d cores replay: %v", design, cores, err)
			}
			if *live.Stats != *replayed.Stats {
				t.Errorf("%v/%d cores: replayed stats diverged from live\n live:   %+v\n replay: %+v",
					design, cores, *live.Stats, *replayed.Stats)
			}
		}
	}
}

// TestWorkloadFromTrace covers the external-capture path: no program
// image, default calibration, but a running simulation with plausible
// stats.
func TestWorkloadFromTrace(t *testing.T) {
	w := replayWorkload(t)
	dir := t.TempDir()
	if err := CaptureTrace(w, dir, 2, 80_000); err != nil {
		t.Fatal(err)
	}
	tw, err := WorkloadFromTrace(dir)
	if err != nil {
		t.Fatal(err)
	}
	if tw.Prog != nil {
		t.Error("trace workload carries a program image")
	}
	res, err := Run(Config{
		Workload: tw, Design: Base1K, Cores: 2,
		WarmupInstr: 10_000, MeasureInstr: 30_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IPC() <= 0 || res.Stats.IPC() > 3 {
		t.Errorf("replayed IPC = %v", res.Stats.IPC())
	}

	// A workload built by WorkloadFromTrace replays its own capture without
	// Config.TraceDir being set.
	res2, err := Run(Config{
		Workload: tw, Design: Base1K, Cores: 2,
		WarmupInstr: 10_000, MeasureInstr: 30_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if *res.Stats != *res2.Stats {
		t.Error("repeated replay of the same capture diverged")
	}

	if _, err := WorkloadFromTrace(t.TempDir()); err == nil {
		t.Error("empty directory accepted")
	}
}

// TestCaptureTraceValidation pins the capture API's error paths.
func TestCaptureTraceValidation(t *testing.T) {
	w := replayWorkload(t)
	if err := CaptureTrace(nil, t.TempDir(), 1, 1000); err == nil {
		t.Error("nil workload accepted")
	}
	if err := CaptureTrace(w, t.TempDir(), 0, 1000); err == nil {
		t.Error("zero cores accepted")
	}
	tw := &Workload{Prof: synth.TraceProfile("x"), TraceDir: t.TempDir()}
	if err := CaptureTrace(tw, t.TempDir(), 1, 1000); err == nil {
		t.Error("programless workload accepted for capture")
	}
}
