# Local targets mirror .github/workflows/ci.yml one-for-one, so "it passes
# locally" and "it passes in CI" are the same command. REPRO_SCALE bounds
# simulation effort (small|default|paper); REPRO_WORKERS bounds the grid
# scheduler's fan-out.

REPRO_SCALE ?= small
export REPRO_SCALE

# COVER_FLOOR is the minimum total statement coverage `make cover` accepts.
# The measured baseline is ~79%; the floor leaves a little slack so small
# refactors don't flake, while a test-less subsystem still fails the gate.
COVER_FLOOR ?= 75.0

# FUZZTIME bounds each fuzz target's run in `make fuzz` (CI uses 10s).
FUZZTIME ?= 10s

.PHONY: all build test race bench bench-json bench-intra bench-compare bench-serve serve-smoke store-smoke fleet-smoke sample-smoke fmt vet lint cover fuzz examples ci

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -run '^$$' -bench=. -benchtime=1x ./...

# bench-json records a machine-readable benchmark snapshot (BENCH_OUT) for
# committing perf trajectories alongside PRs; see BENCH_pr3_*.json. The
# test run and the JSON conversion are separate commands so a failing
# benchmark fails the target instead of hiding behind the pipe.
# Snapshots take the median of 5 separate runs (-count=5; benchjson merges
# repeated lines per benchmark): a scheduler spike on a loaded or small
# machine contaminates one run, never the middle of five, whereas the old
# mean-of-3-iterations carried a third of every spike straight into
# bench-compare's 10% gate and made the committed trajectory a coin flip.
BENCH_OUT ?= bench.json
bench-json:
	go test -run '^$$' -bench=. -benchtime=1x -count=5 -benchmem ./... > $(BENCH_OUT).txt
	go run ./cmd/benchjson < $(BENCH_OUT).txt > $(BENCH_OUT)
	@rm -f $(BENCH_OUT).txt

# bench-intra mirrors the CI intra-smoke step: wall-clock of one 8-core
# simulation, serial vs bound-weave (K=8, GOMAXPROCS workers), asserting a
# ≥1.3x speedup. Meaningless on 1-CPU machines (the test skips itself).
bench-intra:
	INTRA_SMOKE=1 go test -run TestIntraWallClockSmoke -count=1 -v .

# bench-compare gates the committed perf trajectory: per-benchmark ns/op
# deltas between the PR's before/after snapshots, failing on >10%
# regressions among benchmarks present in both. The floor exempts
# sub-100µs micro-benchmarks from gating (still printed): at the
# snapshots' -benchtime=1x a single ~100ns call cannot be timed reliably,
# and gating on it would flag a random set every run.
BENCH_BEFORE ?= BENCH_pr10_before.json
BENCH_AFTER  ?= BENCH_pr10_after.json
bench-compare:
	go run ./cmd/benchjson -compare -floor 100000 $(BENCH_BEFORE) $(BENCH_AFTER)

# bench-serve snapshots the serving layer's job latency (p50/p99 at 1, 8,
# and 64 concurrent clients) as a benchjson artifact; the committed
# baseline is BENCH_pr6_serve.json.
SERVE_BENCH_OUT ?= BENCH_serve.json
bench-serve:
	go test ./internal/serve -run '^$$' -bench BenchmarkServeLatency -benchtime=20x > $(SERVE_BENCH_OUT).txt
	go run ./cmd/benchjson < $(SERVE_BENCH_OUT).txt > $(SERVE_BENCH_OUT)
	@rm -f $(SERVE_BENCH_OUT).txt

# serve-smoke boots the real confluence-serve binary (race-enabled),
# submits the golden design point over HTTP, compares the served stats
# against testdata/golden.json, and SIGTERMs it expecting a clean drain.
serve-smoke:
	SERVE_SMOKE=1 go test ./cmd/confluence-serve -run TestServeSmoke -count=1 -v

# store-smoke exercises durable resume end to end with the real binary:
# run a small sweep with -store, SIGKILL it after its first completed
# cell, re-run the same command (must hit the store), and diff its stdout
# byte-for-byte against a from-scratch run with an empty store.
store-smoke:
	STORE_SMOKE=1 go test ./cmd/confluence-sim -run TestStoreSmoke -count=1 -v

# fleet-smoke proves the fleet protocol preemption-proof with the real
# race-enabled binary: a coordinator plus three workers share one sweep,
# two workers SIGKILL themselves mid-cell (chaos kill-after-claims) and
# their cells are reclaimed via lease expiry; the coordinator's stdout
# must be byte-identical to a serial run. A second grid with a poison
# cell must quarantine it after the retry budget and exit non-zero.
fleet-smoke:
	FLEET_SMOKE=1 go test ./cmd/confluence-sim -run TestFleetSmoke -count=1 -v -timeout 15m

# sample-smoke pins sampled mode's acceptance bound with the real binary:
# the Figure 1 BTB capacity sweep (a full figure of prefetcherless cells,
# where sampled full-coverage MPKI is event-exact) run exact and with
# -sample must agree within 1% on every cell while the sampled plan
# details at least 10x fewer instructions.
sample-smoke:
	SAMPLE_SMOKE=1 go test ./cmd/confluence-sim -run TestSampleSmoke -count=1 -v -timeout 15m

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needs to run on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

# lint runs the confluence-lint determinism suite (maprange, wallclock,
# seededrand, baregoroutine) over every package; see README "Static
# analysis". Exit 1 means findings — fix them or justify each with a
# //confluence:allow <analyzer> <reason> directive.
lint:
	go run ./cmd/confluence-lint ./...

cover:
	go test -coverprofile=cover.out ./...
	@total=$$(go tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }

fuzz:
	go test ./internal/trace -run '^$$' -fuzz FuzzTraceRoundTrip -fuzztime=$(FUZZTIME)
	go test ./internal/trace -run '^$$' -fuzz FuzzReaderCorrupt -fuzztime=$(FUZZTIME)

# examples runs every runnable example end to end (tiny scales), the smoke
# test that keeps them honest; mirrors the CI examples step.
examples:
	go run ./examples/quickstart
	go run ./examples/consolidation_study
	go run ./examples/serve_job

# `cover` runs the full `go test ./...` suite itself, so ci does not also
# depend on the plain `test` target (race is the only second full pass).
ci: fmt vet lint build cover examples race bench fuzz serve-smoke store-smoke fleet-smoke sample-smoke
