# Local targets mirror .github/workflows/ci.yml one-for-one, so "it passes
# locally" and "it passes in CI" are the same command. REPRO_SCALE bounds
# simulation effort (small|default|paper); REPRO_WORKERS bounds the grid
# scheduler's fan-out.

REPRO_SCALE ?= small
export REPRO_SCALE

.PHONY: all build test race bench fmt vet ci

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -run '^$$' -bench=. -benchtime=1x ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needs to run on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

ci: fmt vet build test race bench
